"""Tests for the repro-lint static analyzer (``repro.analysis``).

Each rule gets a fixture snippet with one seeded violation that must be
caught; the suppression machinery (pragmas, baseline) and the CLI surface
are pinned; and a repo-gate test runs the analyzer over ``src`` with the
committed baseline exactly the way CI does.
"""

import json
import os
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Baseline,
    Checker,
    available_checkers,
    get_checker,
    lint_paths,
    lint_source,
    main,
    register_checker,
    unregister_checker,
)
from repro.analysis.baseline import assign_fingerprints

REPO_ROOT = Path(__file__).resolve().parents[1]

# Paths that put a fixture inside each rule's scope.
LHCDS = "src/repro/lhcds/fixture.py"
ENGINE = "src/repro/engine/fixture.py"
ANYREPRO = "src/repro/fixture.py"
OUTSIDE = "scripts/fixture.py"


def lint(source, path=LHCDS, rules=None):
    return lint_source(textwrap.dedent(source), path, rules)


def active(findings, rule=None):
    return [
        f
        for f in findings
        if not f.suppressed and (rule is None or f.rule == rule)
    ]


class TestExactness:
    def test_catches_float_coercion(self):
        findings = lint("x = float(y)\n")
        assert [f.rule for f in active(findings)] == ["EX01"]
        assert "float()" in findings[0].message

    def test_catches_float_literal(self):
        findings = lint("threshold = 0.5\n")
        assert [f.rule for f in active(findings)] == ["EX01"]

    def test_catches_epsilon_comparison(self):
        findings = lint("ok = a >= b - 1e-12\n")
        assert [f.rule for f in active(findings)] == ["EX01"]
        assert "epsilon" in findings[0].message

    def test_catches_math_inf(self):
        findings = lint("import math\nbound = math.inf\n")
        assert [f.rule for f in active(findings)] == ["EX01"]

    def test_flagged_only_in_certified_modules(self):
        assert active(lint("x = float(y)\n", path=OUTSIDE)) == []

    def test_float_slack_expression_is_exempt(self):
        findings = lint(
            """
            from repro.lhcds.stable_groups import FLOAT_SLACK
            padded = value + FLOAT_SLACK + 0.0
            ok = a >= b - FLOAT_SLACK
            """
        )
        assert active(findings, "EX01") == []

    def test_declared_float_storage_is_exempt(self):
        findings = lint(
            """
            elapsed: float = 0.0

            def wait(seconds: float = 0.25):
                pass

            def lease() -> float:
                if broken:
                    return 0.0
                return stored
            """
        )
        assert active(findings, "EX01") == []

    def test_undeclared_default_still_flagged(self):
        findings = lint("def wait(seconds=0.25):\n    pass\n")
        assert [f.rule for f in active(findings)] == ["EX01"]


class TestDeterminism:
    def test_catches_for_loop_over_set(self):
        findings = lint(
            """
            out = []
            for v in set(items):
                out.append(v)
            """
        )
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_catches_comprehension_over_set_name(self):
        findings = lint(
            """
            level = {v for v in vertices}
            ordered = [v for v in level]
            """
        )
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_catches_list_over_set_algebra(self):
        findings = lint(
            """
            keep = set(a) - set(b)
            out = list(keep)
            """
        )
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_catches_hash_in_sort_key(self):
        findings = lint("order = sorted(items, key=lambda v: hash(v))\n")
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_catches_module_level_random(self):
        findings = lint("import random\npick = random.random()\n")
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_catches_set_into_graph_constructor(self):
        findings = lint("g = Graph(vertices={v for v in names})\n")
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_order_insensitive_consumers_are_fine(self):
        findings = lint(
            """
            level = {v for v in vertices}
            total = sum(w[v] for v in level)
            best = max(level)
            ordered = sorted(level)
            listed = list(ordered)
            again = {v for v in level}
            """
        )
        assert active(findings, "DT01") == []

    def test_reassigned_name_is_untracked(self):
        findings = lint(
            """
            level = {v for v in vertices}
            level = sorted(level)
            out = [v for v in level]
            """
        )
        assert active(findings, "DT01") == []


class TestPickleSafety:
    def test_catches_function_nested_envelope(self):
        findings = lint(
            """
            def build():
                class LocalTask:
                    pass
                return LocalTask()
            """,
            path=ENGINE,
        )
        assert [f.rule for f in active(findings)] == ["PK01"]
        assert "module-level" in findings[0].message

    def test_catches_lambda_field_default(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class RetryTask:
                callback: object = lambda: None
            """,
            path=ENGINE,
        )
        assert [f.rule for f in active(findings)] == ["PK01"]

    def test_catches_handle_stored_on_self(self):
        findings = lint(
            """
            class SpoolResult:
                \"\"\"Envelope.\"\"\"

                def __init__(self, path):
                    self.handle = open(path)
            """,
            path=ENGINE,
        )
        assert [f.rule for f in active(findings)] == ["PK01"]

    def test_non_envelope_names_are_ignored(self):
        findings = lint(
            """
            def build():
                class Helper:
                    pass
                return Helper()
            """,
            path=ENGINE,
        )
        assert active(findings, "PK01") == []


class TestRegistryHygiene:
    def test_catches_specless_registration(self):
        findings = lint(
            """
            register_solver(SolverSpec(name="fast"))
            """,
            path=ENGINE,
        )
        rules = [f.rule for f in active(findings)]
        assert rules == ["RG01", "RG01"]  # no description, no exact=

    def test_complete_registration_is_fine(self):
        findings = lint(
            """
            register_solver(
                SolverSpec(name="fast", description="the fast path", exact=True)
            )
            """,
            path=ENGINE,
        )
        assert active(findings, "RG01") == []

    def test_catches_undocumented_executor_subclass(self):
        findings = lint(
            """
            class QuietExecutor(Executor):
                name = "quiet"
            """,
            path=ENGINE,
        )
        messages = [f.message for f in active(findings, "RG01")]
        assert any("docstring" in m for m in messages)
        assert any("'description'" in m for m in messages)

    def test_init_assigned_metadata_counts(self):
        findings = lint(
            """
            class SizedPattern(Pattern):
                \"\"\"A pattern whose metadata is derived at construction.\"\"\"

                def __init__(self, h):
                    self.name = f"clique-{h}"
                    self.size = h
            """,
            path=ANYREPRO,
        )
        assert active(findings, "RG01") == []


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        findings = lint(
            "x = float(y)  # repro: allow-EX01(boundary conversion, audited)\n"
        )
        assert active(findings) == []
        (finding,) = findings
        assert finding.suppression == "pragma"
        assert finding.reason == "boundary conversion, audited"

    def test_pragma_on_other_line_does_not_suppress(self):
        findings = lint(
            """
            # repro: allow-EX01(wrong line)
            x = float(y)
            """
        )
        assert [f.rule for f in active(findings)] == ["EX01"]

    def test_pragma_only_covers_its_rule(self):
        findings = lint(
            "x = float(y)  # repro: allow-DT01(mismatched rule)\n"
        )
        assert [f.rule for f in active(findings)] == ["EX01"]

    def test_file_level_pragma_suppresses_everywhere(self):
        findings = lint(
            """
            # repro: allow-file-EX01(float kernel by design)
            a = 0.5
            b = float(x)
            """
        )
        assert active(findings) == []
        assert all(f.suppression == "pragma" for f in findings)

    def test_reasonless_pragma_is_a_finding(self):
        findings = lint("x = float(y)  # repro: allow-EX01()\n")
        rules = sorted(f.rule for f in active(findings))
        assert rules == ["EX01", "PRAGMA"]

    def test_malformed_pragma_is_a_finding(self):
        findings = lint("x = 1  # repro: allow-EX01 missing parens\n")
        assert [f.rule for f in active(findings)] == ["PRAGMA"]
        assert "malformed" in findings[-1].message


class TestBaseline:
    SOURCE = "def wait(seconds=0.25):\n    pass\n"

    def write_fixture(self, tmp_path, source=SOURCE):
        module = tmp_path / "src" / "repro" / "lhcds" / "fixture.py"
        module.parent.mkdir(parents=True)
        module.write_text(source)
        return module

    def test_round_trip_suppresses_then_line_edit_invalidates(self, tmp_path, monkeypatch):
        module = self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)

        report = lint_paths([str(module)])
        assert [f.rule for f in report.active] == ["EX01"]

        baseline_path = tmp_path / ".repro-lint-baseline.json"
        Baseline.from_findings(report.active).save(str(baseline_path))
        reloaded = Baseline.load(str(baseline_path))
        assert len(reloaded) == 1

        gated = lint_paths([str(module)], baseline=reloaded)
        assert gated.active == []
        assert gated.suppressed[0].suppression == "baseline"
        assert gated.exit_code() == 0

        # Renumbering the file keeps the entry; editing the line voids it.
        module.write_text("# a new leading comment\n" + self.SOURCE)
        assert lint_paths([str(module)], baseline=reloaded).active == []
        module.write_text(self.SOURCE.replace("0.25", "0.75"))
        assert len(lint_paths([str(module)], baseline=reloaded).active) == 1

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path, monkeypatch):
        module = self.write_fixture(
            tmp_path, "a = 0.5\nb = 1\na = 0.5\n"
        )
        monkeypatch.chdir(tmp_path)
        report = lint_paths([str(module)])
        prints = [p for _, p in assign_fingerprints(report.active)]
        assert len(prints) == 2
        assert len(set(prints)) == 2

    def test_unsupported_version_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(AnalysisError):
            Baseline.load(str(path))

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "nope.json"))) == 0


class TestRunnerAndCli:
    def test_syntax_error_becomes_parse_finding(self):
        findings = lint_source("def broken(:\n", LHCDS)
        assert [f.rule for f in findings] == ["PARSE"]

    def test_json_schema(self, tmp_path, monkeypatch, capsys):
        module = tmp_path / "src" / "repro" / "lhcds" / "fixture.py"
        module.parent.mkdir(parents=True)
        module.write_text("x = float(y)\n")
        monkeypatch.chdir(tmp_path)
        code = main([str(module), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["version"] == 1
        assert payload["summary"] == {
            "files_checked": 1,
            "total": 1,
            "active": 1,
            "suppressed_pragma": 0,
            "suppressed_baseline": 0,
        }
        (finding,) = payload["findings"]
        assert finding["rule"] == "EX01"
        assert finding["line"] == 1
        assert finding["suppressed"] is False
        assert set(finding) == {
            "rule",
            "path",
            "line",
            "col",
            "message",
            "snippet",
            "suppressed",
            "suppression",
            "reason",
        }

    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        module = tmp_path / "src" / "repro" / "lhcds" / "fixture.py"
        module.parent.mkdir(parents=True)
        module.write_text("from fractions import Fraction\nx = Fraction(1, 3)\n")
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--no-baseline"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["does-not-exist"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_select_runs_only_named_rules(self):
        findings = lint(
            """
            x = float(y)
            for v in set(items):
                x = v
            """,
            rules=["DT01"],
        )
        assert [f.rule for f in active(findings)] == ["DT01"]

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(AnalysisError):
            get_checker("ZZ99")

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("EX01", "DT01", "PK01", "RG01"):
            assert rule in out

    def test_cli_subcommand_is_wired(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        assert "EX01" in capsys.readouterr().out


class TestRegistry:
    def test_four_rules_registered(self):
        assert {"EX01", "DT01", "PK01", "RG01"} <= set(available_checkers())

    def test_register_requires_metadata_and_uniqueness(self):
        class NoRule(Checker):
            pass

        with pytest.raises(AnalysisError):
            register_checker(NoRule)

        class Dupe(Checker):
            rule = "EX01"
            title = "imposter"

        with pytest.raises(AnalysisError):
            register_checker(Dupe)

    def test_register_unregister_round_trip(self):
        class Probe(Checker):
            rule = "TT01"
            title = "test probe"

        register_checker(Probe)
        try:
            assert get_checker("tt01") is Probe
        finally:
            unregister_checker("TT01")
        with pytest.raises(AnalysisError):
            unregister_checker("TT01")


class TestRepoGate:
    def test_src_is_clean_under_committed_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = main(["src"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_every_committed_pragma_has_a_reason(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths(["src"])
        pragmad = [f for f in report.suppressed if f.suppression == "pragma"]
        assert pragmad, "expected pragma-suppressed findings in the tree"
        assert all(f.reason for f in pragmad)
        assert not [f for f in report.findings if f.rule == "PRAGMA"]


# Paths that put a fixture inside the CC02 executor-boundary scope.
EXECUTORS = "src/repro/engine/executors/fixture.py"


class TestEffects:
    """Unit tests for the mutation-summary engine itself."""

    def summarize(self, source, path=ANYREPRO):
        import ast as _ast

        from repro.analysis.base import CheckContext
        from repro.analysis.effects import module_summaries

        text = textwrap.dedent(source)
        tree = _ast.parse(text)
        return module_summaries(
            tree, CheckContext(path=path, lines=text.splitlines())
        )

    def test_direct_and_tuple_writes(self):
        (summary,) = self.summarize(
            """
            class Box:
                def __init__(self):
                    self._a = 0
                def move(self, f):
                    self._a, rest = f()
                def drop(self):
                    del self._a
            """
        )
        assert {m.kind for m in summary.methods["move"].mutations} == {"assign"}
        assert {m.kind for m in summary.methods["drop"].mutations} == {"delete"}
        assert summary.fields >= {"_a"}

    def test_mutator_calls_and_subscripts(self):
        (summary,) = self.summarize(
            """
            class Box:
                def put(self, k, v):
                    self._items[k] = v
                    self._items.update(v)
                    self._meta.rows.append(v)
            """
        )
        mutated = summary.methods["put"].mutated_fields()
        assert set(mutated) == {"_items", "_meta"}
        kinds = [m.kind for m in mutated["_items"]]
        assert kinds == ["subscript", "call"]

    def test_lock_context_and_nested_defs(self):
        (summary,) = self.summarize(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                def locked(self):
                    with self._lock:
                        self._n = 1
                def deferred(self):
                    with self._lock:
                        def task():
                            self._n = 2
                        return task
            """
        )
        assert summary.lock_fields == {"_lock"}
        (locked,) = summary.methods["locked"].mutations
        assert locked.locks == frozenset({"_lock"})
        # The nested callable runs after the with-block exits: no locks.
        (deferred,) = summary.methods["deferred"].mutations
        assert deferred.locks == frozenset()

    def test_alias_tracking_kill_and_launder(self):
        (summary,) = self.summarize(
            """
            class Box:
                def tracked(self, k):
                    rec = self._recs.get(k)
                    rec["n"] += 1
                def killed(self, k):
                    rec = self._recs.get(k)
                    rec = k
                    rec["n"] += 1
                def laundered(self):
                    rec = dict(self._recs)
                    rec["n"] = 1
            """
        )
        (tracked,) = summary.methods["tracked"].mutations
        assert (tracked.field, tracked.via) == ("_recs", "rec")
        assert summary.methods["killed"].mutations == []
        assert summary.methods["laundered"].mutations == []

    def test_holds_pragma_and_manifest(self):
        (summary,) = self.summarize(
            """
            import threading

            class Box:
                GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = threading.RLock()
                    self._items = {}

                # repro: holds(_lock)
                def helper(self):
                    self._items.clear()
            """
        )
        assert summary.guarded_by == {"_items": "_lock"}
        assert summary.manifest_error is None
        (mutation,) = summary.methods["helper"].mutations
        assert mutation.locks == frozenset({"_lock"})

    def test_non_literal_manifest_is_an_error(self):
        (summary,) = self.summarize(
            """
            class Box:
                GUARDED_BY = {"_items": LOCK_NAME}
            """
        )
        assert summary.manifest_error is not None

    def test_guarded_by_pragma_attaches_to_assignment(self):
        (summary,) = self.summarize(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    # repro: guarded-by(_lock)
                    self._items = {}
            """
        )
        assert summary.guarded_by == {"_items": "_lock"}


class TestLockDiscipline:
    def test_catches_unlocked_mutation(self):
        findings = lint(
            """
            import threading

            class Widget:
                GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    self._items.append(x)
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert [f.rule for f in active(findings)] == ["CC01"]
        assert "outside 'with self._lock:'" in findings[0].message

    def test_locked_mutation_is_clean(self):
        findings = lint(
            """
            import threading

            class Widget:
                GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._items.append(x)
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert active(findings) == []

    def test_catches_alias_mutation_outside_lock(self):
        findings = lint(
            """
            import threading

            class Widget:
                GUARDED_BY = {"_records": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._records = {}

                def bump(self, name):
                    record = self._records.get(name)
                    record["n"] += 1
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert [f.rule for f in active(findings)] == ["CC01"]
        assert "alias 'record'" in findings[0].message

    def test_holds_pragma_satisfies_the_guard(self):
        findings = lint(
            """
            import threading

            class Widget:
                GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = threading.RLock()
                    self._items = []

                def add(self, x):
                    with self._lock:
                        self._admit(x)

                # repro: holds(_lock)
                def _admit(self, x):
                    self._items.append(x)
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert active(findings) == []

    def test_guard_through_non_lock_is_a_finding(self):
        findings = lint(
            """
            class Widget:
                GUARDED_BY = {"_items": "_mutex"}

                def __init__(self):
                    self._items = []

                def add(self, x):
                    self._items.append(x)
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert [f.rule for f in active(findings)] == ["CC01"]
        assert "not a lock field" in findings[0].message

    def test_unknown_field_and_stale_guard_are_findings(self):
        findings = lint(
            """
            import threading

            class Widget:
                GUARDED_BY = {"_ghost": "_lock", "_stale": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._stale = 0
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        messages = sorted(f.message for f in active(findings))
        assert len(messages) == 2
        joined = "\n".join(messages)
        assert "unknown field '_ghost'" in joined
        assert "stale guard" in joined

    def test_lock_without_declared_discipline_is_a_finding(self):
        findings = lint(
            """
            import threading

            class Widget:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert [f.rule for f in active(findings)] == ["CC01"]
        assert "guards nothing declared" in findings[0].message

    def test_non_literal_manifest_is_a_finding(self):
        findings = lint(
            """
            class Widget:
                GUARDED_BY = {"_items": LOCK}
            """,
            path=ANYREPRO,
            rules=["CC01"],
        )
        assert [f.rule for f in active(findings)] == ["CC01"]

    def test_out_of_scope_module_is_ignored(self):
        findings = lint(
            """
            import threading

            class Widget:
                def __init__(self):
                    self._lock = threading.Lock()
            """,
            path=OUTSIDE,
            rules=["CC01"],
        )
        assert active(findings) == []


class TestExecutorCapture:
    def test_catches_module_global_mutation(self):
        findings = lint(
            """
            COUNTERS = {}

            def task(key):
                COUNTERS[key] = 1
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert [f.rule for f in active(findings)] == ["CC02"]
        assert "module global 'COUNTERS'" in findings[0].message

    def test_registration_functions_are_carved_out(self):
        findings = lint(
            """
            _REGISTRY = {}

            def register_executor(name, executor_class):
                _REGISTRY[name] = executor_class

            def unregister_executor(name):
                del _REGISTRY[name]
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert active(findings) == []

    def test_catches_global_rebind(self):
        findings = lint(
            """
            LIMIT = 3

            def bump():
                global LIMIT
                LIMIT += 1
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert [f.rule for f in active(findings)] == ["CC02"]

    def test_catches_closure_mutation(self):
        findings = lint(
            """
            def make_task():
                acc = []

                def task(x):
                    acc.append(x)

                return task
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert [f.rule for f in active(findings)] == ["CC02"]
        assert "closed-over name 'acc'" in findings[0].message

    def test_catches_nonlocal_write(self):
        findings = lint(
            """
            def outer():
                n = 0

                def inner():
                    nonlocal n
                    n += 1

                return inner
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert [f.rule for f in active(findings)] == ["CC02"]

    def test_local_state_is_fine(self):
        findings = lint(
            """
            def task(payload):
                results = []
                for item in payload:
                    results.append(item)
                return results
            """,
            path=EXECUTORS,
            rules=["CC02"],
        )
        assert active(findings) == []

    def test_out_of_scope_module_is_ignored(self):
        findings = lint(
            "COUNTERS = {}\ndef task(k):\n    COUNTERS[k] = 1\n",
            path=ANYREPRO,
            rules=["CC02"],
        )
        assert active(findings) == []


class TestWarmArtifact:
    def test_provider_must_copy_on_fetch(self):
        findings = lint(
            """
            class FooCache:
                def fetch(self, key):
                    cached = self._memory.get(key)
                    return cached
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert [f.rule for f in active(findings)] == ["MU01"]
        assert "without copying" in findings[0].message

    def test_provider_copy_returns_are_clean(self):
        findings = lint(
            """
            import dataclasses

            class FooCache:
                def fetch(self, key):
                    cached = self._memory.get(key)
                    if cached is None:
                        return None
                    components, stats = cached
                    return list(components), dataclasses.replace(stats), STATE_HIT
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert active(findings) == []

    def test_consumer_mutation_of_store_read_is_caught(self):
        findings = lint(
            """
            class Session:
                def solve(self, key):
                    state = self._states.get(key)
                    state.bounds = None
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert [f.rule for f in active(findings)] == ["MU01"]
        assert "self._states" in findings[0].message

    def test_consumer_mutator_call_via_loop_is_caught(self):
        findings = lint(
            """
            class Session:
                def repair(self):
                    for comp in self._components:
                        comp.instances.clear()
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert [f.rule for f in active(findings)] == ["MU01"]

    def test_consumer_laundering_through_copy_is_clean(self):
        findings = lint(
            """
            class Session:
                def solve(self, key):
                    state = list(self._states[key])
                    state.append(1)
                    fresh = self._states[key].copy()
                    fresh.update(x=1)
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert active(findings) == []

    def test_sessions_store_is_mutable_by_design(self):
        findings = lint(
            """
            class Service:
                def tick(self, key):
                    session = self._sessions.get(key)
                    session.touch = 1
            """,
            path=ENGINE,
            rules=["MU01"],
        )
        assert active(findings) == []

    def test_out_of_scope_module_is_ignored(self):
        findings = lint(
            """
            class Session:
                def solve(self, key):
                    state = self._states.get(key)
                    state.bounds = None
            """,
            path=OUTSIDE,
            rules=["MU01"],
        )
        assert active(findings) == []


class TestSummariesCli:
    FIXTURE = textwrap.dedent(
        """
        import threading

        class WarmThing:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, x):
                with self._lock:
                    self._items.append(x)
        """
    )

    def write_fixture(self, tmp_path):
        module = tmp_path / "src" / "repro" / "engine" / "fixture.py"
        module.parent.mkdir(parents=True)
        module.write_text(self.FIXTURE)
        return module

    def test_human_dump(self, tmp_path, monkeypatch, capsys):
        module = self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main([str(module), "--summaries"]) == 0
        out = capsys.readouterr().out
        assert "class WarmThing" in out
        assert "_items -> _lock" in out
        assert "under _lock" in out

    def test_class_filter(self, tmp_path, monkeypatch, capsys):
        module = self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main([str(module), "--summaries", "nosuchclass"]) == 0
        assert "no classes matched" in capsys.readouterr().out

    def test_json_dump(self, tmp_path, monkeypatch, capsys):
        module = self.write_fixture(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main([str(module), "--summaries", "warm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        (klass,) = payload["classes"]
        assert klass["class"] == "WarmThing"
        assert klass["guarded_by"] == {"_items": "_lock"}
        add = [m for m in klass["methods"] if m["name"] == "add"][0]
        (mutation,) = add["mutations"]
        assert mutation["field"] == "_items"
        assert mutation["locks"] == ["_lock"]

    def test_seven_rules_registered(self):
        assert {
            "EX01",
            "DT01",
            "PK01",
            "RG01",
            "CC01",
            "CC02",
            "MU01",
        } <= set(available_checkers())

    def test_manifest_classes_carry_validated_guards(self, monkeypatch):
        """The three concurrency-critical classes declare real manifests."""
        import ast as _ast

        from repro.analysis.base import CheckContext
        from repro.analysis.effects import module_summaries

        expected = {
            "SolveService": REPO_ROOT / "src" / "repro" / "server" / "service.py",
            "PreprocessCache": REPO_ROOT / "src" / "repro" / "engine" / "cache.py",
            "IncrementalSession": (
                REPO_ROOT / "src" / "repro" / "engine" / "incremental.py"
            ),
        }
        for class_name, path in expected.items():
            source = path.read_text()
            summaries = module_summaries(
                _ast.parse(source),
                CheckContext(path=str(path), lines=source.splitlines()),
            )
            (summary,) = [s for s in summaries if s.name == class_name]
            assert summary.guarded_by, class_name
            assert summary.manifest_error is None
            for field_name, lock in summary.guarded_by.items():
                assert field_name in summary.fields, (class_name, field_name)
                assert lock in summary.lock_fields, (class_name, lock)
