"""Tests for :class:`GraphDelta`, :meth:`Graph.apply_delta`, and the
:class:`InstanceSet` delta path (drop-incident / keep / re-append)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.cliques import clique_instances
from repro.errors import GraphError
from repro.graph import Graph, GraphDelta, complete_graph, connected_components
from repro.graph.delta import _canonical_edges, _canonical_vertices

from helpers import random_graph


class TestCanonicalisation:
    def test_vertices_deduped_and_sorted(self):
        delta = GraphDelta(add_vertices=(3, 1, 3, 2, 1))
        assert delta.add_vertices == (1, 2, 3)

    def test_edges_oriented_and_deduped(self):
        delta = GraphDelta(add_edges=((2, 1), (1, 2), (3, 1)))
        assert delta.add_edges == ((1, 2), (1, 3))

    def test_mixed_label_types_are_ordered(self):
        delta = GraphDelta(add_vertices=("b", 2, "a", 1))
        assert set(delta.add_vertices) == {"a", "b", 1, 2}
        assert len(delta.add_vertices) == 4

    def test_self_loops_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            GraphDelta(add_edges=((1, 1),))

    def test_add_remove_vertex_overlap_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(add_vertices=(1,), remove_vertices=(1,))

    def test_add_remove_edge_overlap_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(add_edges=((1, 2),), remove_edges=((2, 1),))

    def test_added_edge_into_removed_vertex_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(add_edges=((1, 2),), remove_vertices=(2,))

    def test_canonical_helpers_match_constructor(self):
        assert _canonical_vertices([2, 1, 2]) == (1, 2)
        assert _canonical_edges([(2, 1)], "add_edges") == ((1, 2),)

    def test_touched_vertices_covers_everything(self):
        delta = GraphDelta(
            add_vertices=(9,),
            remove_vertices=(8,),
            add_edges=((1, 2),),
            remove_edges=((3, 4),),
        )
        assert delta.touched_vertices == frozenset({1, 2, 3, 4, 8, 9})

    def test_is_empty(self):
        assert GraphDelta().is_empty
        assert not GraphDelta(add_vertices=(1,)).is_empty


class TestContentKey:
    def test_order_insensitive(self):
        a = GraphDelta(add_edges=((1, 2), (3, 4)), remove_vertices=(7, 8))
        b = GraphDelta(add_edges=((4, 3), (2, 1)), remove_vertices=(8, 7))
        assert a.content_key() == b.content_key()

    def test_field_sensitive(self):
        assert (
            GraphDelta(add_edges=((1, 2),)).content_key()
            != GraphDelta(remove_edges=((1, 2),)).content_key()
        )
        assert (
            GraphDelta(add_vertices=(1,)).content_key()
            != GraphDelta(remove_vertices=(1,)).content_key()
        )


class TestJsonRoundTrip:
    def test_round_trip(self):
        delta = GraphDelta(
            add_vertices=(5,),
            remove_vertices=(6,),
            add_edges=((1, 2),),
            remove_edges=((3, 4),),
        )
        assert GraphDelta.from_json_dict(delta.to_json_dict()) == delta

    def test_unknown_keys_rejected_with_accepted_list(self):
        with pytest.raises(GraphError, match="accepted keys"):
            GraphDelta.from_json_dict({"add_edge": [[1, 2]]})

    def test_json_keys_matches_to_json_dict(self):
        assert set(GraphDelta.json_keys()) == set(GraphDelta().to_json_dict())

    def test_bool_labels_rejected(self):
        with pytest.raises(GraphError, match="labels must be"):
            GraphDelta.from_json_dict({"add_vertices": [True]})

    def test_malformed_edges_rejected(self):
        with pytest.raises(GraphError, match="pairs"):
            GraphDelta.from_json_dict({"add_edges": [[1, 2, 3]]})
        with pytest.raises(GraphError, match="must be a list"):
            GraphDelta.from_json_dict({"add_edges": 7})


class TestGraphApplyDelta:
    def test_apply_order_and_implicit_endpoints(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.apply_delta(
            GraphDelta(
                add_vertices=(9,),
                add_edges=((2, 3),),  # endpoint 3 created implicitly
                remove_edges=((0, 1),),
            )
        )
        assert graph.has_vertex(9) and graph.has_vertex(3)
        assert graph.has_edge(2, 3) and not graph.has_edge(0, 1)

    def test_preconditions_adds_must_be_new(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta(add_vertices=(0,)))
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta(add_edges=((0, 1),)))

    def test_preconditions_removes_must_exist(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta(remove_vertices=(7,)))
        with pytest.raises(GraphError):
            graph.apply_delta(GraphDelta(remove_edges=((0, 7),)))

    def test_atomicity_failed_delta_leaves_graph_unchanged(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        before_key = graph.content_key()
        before_epoch = graph.delta_epoch
        with pytest.raises(GraphError):
            # add_edges is valid, remove_vertices is not: nothing may apply.
            graph.apply_delta(
                GraphDelta(add_edges=((5, 6),), remove_vertices=(42,))
            )
        assert graph.content_key() == before_key
        assert graph.delta_epoch == before_epoch

    def test_epoch_moves_only_on_real_change(self):
        graph = Graph(edges=[(0, 1)])
        epoch = graph.delta_epoch
        graph.add_vertex(0)  # already present: no-op
        graph.add_edge(0, 1)  # already present: no-op
        assert graph.delta_epoch == epoch
        graph.add_edge(1, 2)
        assert graph.delta_epoch > epoch

    def test_content_key_memo_invalidated_by_mutation(self):
        graph = Graph(edges=[(0, 1)])
        key = graph.content_key()
        assert graph.content_key() == key  # memoised
        graph.apply_delta(GraphDelta(add_edges=((1, 2),)))
        assert graph.content_key() != key
        # And equals a fresh graph with the same content.
        assert graph.content_key() == Graph(edges=[(0, 1), (1, 2)]).content_key()

    def test_pickle_round_trip_preserves_content(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.apply_delta(GraphDelta(add_edges=((2, 3),)))
        clone = pickle.loads(pickle.dumps(graph))
        assert clone.content_key() == graph.content_key()
        assert sorted(clone.vertices()) == sorted(graph.vertices())


class TestInstanceSetDelta:
    def _instances(self, graph, h=3):
        return clique_instances(graph, h)

    def test_indices_incident_matches_scan(self):
        graph = random_graph(14, 0.4, seed=3)
        instances = self._instances(graph)
        for probe in ({0, 1}, {5}, {13, 2, 7}, set()):
            expected = [
                i
                for i, inst in enumerate(instances.instances)
                if any(v in probe for v in inst)
            ]
            assert instances.indices_incident(probe) == expected

    def test_apply_delta_drops_keeps_appends(self):
        graph = random_graph(12, 0.45, seed=5)
        instances = self._instances(graph)
        touched = {0, 1, 2}
        kept = [
            inst
            for inst in instances.instances
            if not any(v in touched for v in inst)
        ]
        new_rows = [(0, 1, 2)] if graph.has_edge(0, 1) else []
        updated, dropped, appended = instances.apply_delta(touched, new_rows)
        assert dropped == instances.num_instances - len(kept)
        assert appended == len(new_rows)
        assert list(updated.instances[: len(kept)]) == kept
        assert list(updated.instances[len(kept):]) == new_rows
        # The receiver is unchanged.
        assert instances.num_instances == len(kept) + dropped

    def test_purity_restrict_equals_local_enumeration(self):
        """The invariant the incremental engine rests on: enumerating the
        whole graph then restricting to a component gives exactly the rows,
        in the same order, as enumerating the component's induced subgraph —
        including after arbitrary mutation histories."""
        rng = random.Random(11)
        for seed in range(6):
            graph = random_graph(16, 0.3, seed=seed)
            for _ in range(8):  # interleaved mutations
                op = rng.choice(["add_edge", "remove_edge", "remove_vertex"])
                vertices = sorted(graph.vertices())
                if op == "add_edge" and len(vertices) >= 2:
                    u, v = rng.sample(vertices, 2)
                    graph.add_edge(u, v)
                elif op == "remove_edge" and graph.num_edges:
                    u, v = sorted(graph.edges())[rng.randrange(graph.num_edges)]
                    graph.remove_edge(u, v)
                elif op == "remove_vertex" and len(vertices) > 4:
                    graph.remove_vertex(rng.choice(vertices))
            for h in (2, 3):
                full = clique_instances(graph, h)
                for comp in connected_components(graph):
                    local = clique_instances(graph.induced_subgraph(comp), h)
                    restricted = full.restrict(comp)
                    assert list(restricted.instances) == list(local.instances)

    def test_incremental_maintenance_matches_full_recount(self):
        """Maintaining the global set under deltas keeps the instance
        multiset a fresh enumeration would produce.  Kept rows may retain
        their pre-delta within-tuple vertex order (the global set's only
        stats consumer is the order-insensitive count; per-component locals
        are re-enumerated fresh), so rows compare as vertex sets."""
        graph = random_graph(15, 0.35, seed=9)
        instances = clique_instances(graph, 3)
        deltas = [
            GraphDelta(add_edges=((0, 1),) if not graph.has_edge(0, 1) else ((0, 20),)),
            GraphDelta(remove_vertices=(5,)),
            GraphDelta(add_vertices=(30,), add_edges=((30, 2), (30, 3), (2, 3))
                       if not graph.has_edge(2, 3) else ((30, 2), (30, 3))),
        ]
        for delta in deltas:
            graph.apply_delta(delta)
            touched = delta.touched_vertices
            fresh = clique_instances(graph, 3)
            new_rows = [
                fresh.instances[i] for i in fresh.indices_incident(touched)
            ]
            instances, _, _ = instances.apply_delta(touched, new_rows)
            canon = lambda rows: sorted(tuple(sorted(r)) for r in rows)  # noqa: E731
            assert canon(instances.instances) == canon(fresh.instances)


class TestComponentsTouching:
    def test_indices_in_order(self):
        from repro.graph import components_touching

        comps = [{0, 1}, {2, 3}, {4}]
        assert components_touching(comps, {3, 4}) == [1, 2]
        assert components_touching(comps, {9}) == []
        assert components_touching(comps, {0, 4}) == [0, 2]


def test_complete_graph_delta_smoke():
    graph = complete_graph(5)
    graph.apply_delta(GraphDelta(remove_vertices=(0,)))
    assert graph.num_vertices == 4 and graph.num_edges == 6
