"""Regression guard: the whole suite must *collect* without errors.

The seed shipped with ``from conftest import random_graph`` in several test
modules, which pytest resolved against ``benchmarks/conftest.py`` and failed
to collect 4 modules.  This test re-runs collection in a subprocess and fails
if any module errors at import time, so the bug class cannot silently return.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_pytest_collects_with_zero_errors():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    output = result.stdout + result.stderr
    # pytest exits non-zero (usually 2) when any module fails to collect.
    assert result.returncode == 0, f"collection failed:\n{output}"
    assert "errors" not in output.splitlines()[-1], output
