"""Tests for the incremental engine: :class:`IncrementalSession` solves must
be bit-identical — result AND stats-relevant fields — to a cold solve of the
final graph, after any delta sequence, on every executor and kernel."""

from __future__ import annotations

import random

import pytest

from repro.engine import (
    IncrementalSession,
    SolveRequest,
    report_signature,
    solve,
)
from repro.errors import EngineError
from repro.graph import Graph, GraphDelta, complete_graph, union_graph
from repro.kernels import available_kernels

from helpers import multi_component_graph, random_graph, shifted


def cold_signature(graph: Graph, **options) -> str:
    return report_signature(
        solve(SolveRequest(graph=graph.copy(), pattern=options.pop("h", 3), **options))
    )


def random_delta(graph: Graph, rng: random.Random) -> GraphDelta:
    """A random valid delta: edge/vertex inserts and deletes, interleaved."""
    vertices = sorted(graph.vertices())
    choice = rng.random()
    if choice < 0.3 and len(vertices) >= 2:
        # insert a bundle of edges (may merge components / create vertices)
        edges = []
        for _ in range(rng.randint(1, 3)):
            u = rng.choice(vertices)
            v = rng.choice(vertices + [max(vertices) + rng.randint(1, 3)])
            if u != v and not graph.has_edge(u, v):
                edges.append((u, v))
        if edges:
            return GraphDelta(add_edges=tuple(edges))
    if choice < 0.55 and graph.num_edges > 1:
        # delete edges (may split a component)
        all_edges = sorted(graph.edges())
        picks = rng.sample(all_edges, min(rng.randint(1, 2), len(all_edges)))
        return GraphDelta(remove_edges=tuple(picks))
    if choice < 0.8 and len(vertices) > 4:
        return GraphDelta(remove_vertices=(rng.choice(vertices),))
    fresh = max(vertices) + rng.randint(1, 5)
    anchors = rng.sample(vertices, min(2, len(vertices)))
    return GraphDelta(
        add_vertices=(fresh,),
        add_edges=tuple((fresh, a) for a in anchors),
    )


class TestBitIdentityRandomized:
    """Property-style: incremental == cold after random delta sequences."""

    @pytest.mark.parametrize(
        "options",
        [
            dict(solver="ippv", k=2),
            dict(solver="exact", k=3),
            dict(solver="greedy", k=2),
            dict(solver="ippv", k=None),
        ],
        ids=["ippv-k2", "exact-k3", "greedy-k2", "ippv-all"],
    )
    def test_random_delta_sequences(self, options):
        for seed in range(4):
            rng = random.Random(seed * 101 + 7)
            graph = random_graph(14 + seed, 0.3, seed=seed)
            session = IncrementalSession(graph, 3, copy_graph=True)
            for _ in range(5):
                delta = random_delta(session.graph, rng)
                if delta.is_empty:
                    continue
                session.apply_delta(delta)
                if session.graph.num_vertices == 0:
                    break
                warm = report_signature(session.solve(**options))
                assert warm == cold_signature(session.graph, **options), (
                    f"seed={seed} delta_log={session.delta_log}"
                )

    def test_split_then_merge_component(self):
        """A bridge removal splits one component; re-adding it merges back."""
        left = complete_graph(4)
        right = shifted(complete_graph(4), 10)
        graph = union_graph(left, right)
        graph.add_edge(0, 10)  # bridge
        session = IncrementalSession(graph, 3, copy_graph=True)
        options = dict(solver="exact", k=2)
        base = report_signature(session.solve(**options))
        assert base == cold_signature(session.graph, **options)

        split = GraphDelta(remove_edges=((0, 10),))
        stats = session.apply_delta(split)
        assert stats.components_invalidated == 1
        assert stats.components_reenumerated == 2  # both halves rebuilt
        assert report_signature(session.solve(**options)) == cold_signature(
            session.graph, **options
        )

        merge = GraphDelta(add_edges=((0, 10),))
        stats = session.apply_delta(merge)
        assert stats.components_invalidated == 2
        assert stats.components_reenumerated == 1
        assert report_signature(session.solve(**options)) == cold_signature(
            session.graph, **options
        )

    def test_vertex_removal_strands_remainder_component(self):
        """Removing a cut vertex leaves remainder components that contain no
        touched vertex but still need fresh state (regression: they used to
        be skipped, leaving zero active components)."""
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
        session = IncrementalSession(graph, 3, copy_graph=True)
        session.apply_delta(GraphDelta(remove_vertices=(3,)))
        options = dict(solver="ippv", k=2)
        report = session.solve(**options)
        assert report.preprocessing.num_active_components == 1
        assert report_signature(report) == cold_signature(session.graph, **options)


class TestExecutorKernelMatrix:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    @pytest.mark.parametrize("kernel", available_kernels())
    def test_matrix_bit_identity(self, executor, kernel):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True, kernel=kernel)
        options = dict(solver="exact", k=3, executor=executor, jobs=2, kernel=kernel)
        session.solve(**options)
        deltas = [
            GraphDelta(remove_vertices=(0,)),  # touch the K6
            GraphDelta(add_edges=((301, 303),)),  # touch the sparse cycle
            GraphDelta(add_vertices=(500,), add_edges=((500, 100), (500, 101))),
        ]
        for delta in deltas:
            session.apply_delta(delta)
            warm = report_signature(session.solve(**options))
            assert warm == cold_signature(session.graph, **options)

    def test_session_kernel_differs_from_solve_kernel(self):
        kernels = available_kernels()
        if len(kernels) < 2:
            pytest.skip("only one kernel registered")
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, kernel=kernels[-1], copy_graph=True)
        session.apply_delta(GraphDelta(remove_vertices=(0,)))
        options = dict(solver="ippv", k=2, kernel=kernels[0])
        assert report_signature(session.solve(**options)) == cold_signature(
            session.graph, **options
        )


class TestResultReuse:
    def test_untouched_components_are_served_from_cache(self):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        options = dict(solver="exact", k=5)
        session.solve(**options)
        first = session.last_solve_stats
        assert first.components_solved > 0 and first.components_reused == 0

        # Touch only the K4 component (vertices 200..203).
        session.apply_delta(GraphDelta(remove_vertices=(203,)))
        session.solve(**options)
        second = session.last_solve_stats
        assert second.components_reused >= 2  # K6, K5, cycle carry over
        assert second.components_solved <= 2

    def test_repeat_solve_is_fully_cached(self):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        options = dict(solver="exact", k=5)
        first = report_signature(session.solve(**options))
        second_report = session.solve(**options)
        stats = session.last_solve_stats
        assert report_signature(second_report) == first
        assert stats.components_solved == 0
        assert stats.components_reused == stats.components_total

    def test_config_change_does_not_reuse_stale_results(self):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        session.solve(solver="exact", k=1)
        session.solve(solver="exact", k=5)  # different k: fresh solve
        assert session.last_solve_stats.components_reused == 0
        assert report_signature(session.solve(solver="exact", k=5)) == cold_signature(
            session.graph, solver="exact", k=5
        )


class TestDeltaStatsAndGuards:
    def test_delta_stats_counts(self):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        stats = session.apply_delta(
            GraphDelta(add_vertices=(900,), remove_vertices=(0,))
        )
        assert stats.epoch == 1 == session.epoch
        assert stats.vertices_added == 1 and stats.vertices_removed == 1
        assert stats.touched_vertices == 2
        assert stats.components_invalidated == 1  # only the K6
        assert stats.components_reused >= 4
        assert stats.instances_dropped > 0
        assert session.last_delta_stats == stats

    def test_out_of_band_mutation_detected(self):
        graph = complete_graph(4)
        session = IncrementalSession(graph, 3)  # shares the object
        graph.add_edge(0, 99)
        with pytest.raises(EngineError, match="outside apply_delta"):
            session.solve(solver="ippv", k=1)
        with pytest.raises(EngineError, match="outside apply_delta"):
            session.apply_delta(GraphDelta(add_vertices=(7,)))

    def test_already_applied_requires_moved_epoch(self):
        graph = complete_graph(4)
        session = IncrementalSession(graph, 3)
        with pytest.raises(EngineError, match="epoch"):
            session.apply_delta(
                GraphDelta(add_vertices=(9,)), already_applied=True
            )

    def test_copy_graph_decouples(self):
        graph = complete_graph(4)
        session = IncrementalSession(graph, 3, copy_graph=True)
        graph.add_edge(0, 99)  # mutating the original is fine
        report = session.solve(solver="ippv", k=1)
        assert report.preprocessing.num_vertices == 4

    def test_session_pins_graph_and_pattern(self):
        session = IncrementalSession(complete_graph(4), 3)
        with pytest.raises(EngineError, match="pins"):
            session.solve(graph=complete_graph(3))
        with pytest.raises(EngineError, match="pins"):
            session.solve(pattern=4)

    def test_empty_graph_rejected(self):
        with pytest.raises(EngineError, match="empty graph"):
            IncrementalSession(Graph(), 3)

    def test_invalid_delta_leaves_session_consistent(self):
        session = IncrementalSession(complete_graph(4), 3, copy_graph=True)
        with pytest.raises(Exception):
            session.apply_delta(GraphDelta(remove_vertices=(42,)))
        assert session.epoch == 0
        options = dict(solver="exact", k=1)
        assert report_signature(session.solve(**options)) == cold_signature(
            session.graph, **options
        )


class TestPruneStatsParity:
    def test_prune_stats_pass_is_replicated(self):
        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        session.apply_delta(GraphDelta(remove_vertices=(0,)))
        options = dict(solver="ippv", k=2, prune_stats=True)
        warm = session.solve(**options)
        assert report_signature(warm) == cold_signature(session.graph, **options)
        assert warm.preprocessing.num_prunable_vertices >= 0


class TestSessionLock:
    """Each session carries its own reentrant lock; concurrent apply/solve
    calls serialize per session and stay bit-identical to the cold solve
    of whatever graph content they observe."""

    def test_concurrent_solves_match_cold_signature(self):
        import threading

        graph = multi_component_graph()
        session = IncrementalSession(graph, 3, copy_graph=True)
        expected = cold_signature(graph, k=1)
        results, errors = [], []

        def worker():
            try:
                for _ in range(5):
                    results.append(report_signature(session.solve(k=1)))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert results and set(results) == {expected}

    def test_interleaved_deltas_and_solves_stay_consistent(self):
        import threading

        graph = complete_graph(6)
        session = IncrementalSession(graph, 3, copy_graph=True)
        session.solve(k=1)
        # The two graph states the toggling delta flips between.
        without = graph.copy()
        without.apply_delta(GraphDelta(remove_edges=((0, 1),)))
        allowed = {cold_signature(graph, k=1), cold_signature(without, k=1)}
        errors = []
        stop = threading.Event()

        def toggler():
            try:
                removed = False
                while not stop.is_set():
                    if removed:
                        session.apply_delta(GraphDelta(add_edges=((0, 1),)))
                    else:
                        session.apply_delta(GraphDelta(remove_edges=((0, 1),)))
                    removed = not removed
                if removed:
                    session.apply_delta(GraphDelta(add_edges=((0, 1),)))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        def solver():
            try:
                for _ in range(10):
                    signature = report_signature(session.solve(k=1))
                    assert signature in allowed
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        toggle = threading.Thread(target=toggler)
        solvers = [threading.Thread(target=solver) for _ in range(3)]
        toggle.start()
        for thread in solvers:
            thread.start()
        for thread in solvers:
            thread.join()
        stop.set()
        toggle.join(timeout=10)
        assert errors == []
        # After the toggler restored the edge, the session is back on the
        # complete graph and still bit-identical to the cold solve.
        assert report_signature(session.solve(k=1)) == cold_signature(graph, k=1)
