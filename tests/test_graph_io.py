"""Round-trip and parsing tests for :mod:`repro.graph.io`."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph
from repro.graph.io import (
    graph_from_edge_string,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestParsing:
    def test_basic_int_edges(self):
        g = graph_from_edge_string("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_hash_and_percent_comments_skipped(self):
        text = "# SNAP style header\n% NetworkRepository style\n0 1\n\n% trailing\n1 2\n"
        g = graph_from_edge_string(text)
        assert g.num_edges == 2

    def test_trailing_weight_columns_ignored(self):
        g = graph_from_edge_string("0 1 3.5\n1 2 0.25 extra\n")
        assert g.num_edges == 2
        assert g.has_edge(1, 2)

    def test_string_labels_kept_when_as_int_false(self):
        g = graph_from_edge_string("a b\nb c\n", as_int=False)
        assert set(g.vertices()) == {"a", "b", "c"}

    def test_as_int_fallback_to_strings(self):
        # One non-numeric token makes *every* label stay a string.
        g = graph_from_edge_string("0 1\n1 x\n")
        assert set(g.vertices()) == {"0", "1", "x"}
        assert g.has_edge("1", "x")

    def test_as_int_converts_when_all_numeric(self):
        g = graph_from_edge_string("10 20\n20 30\n", as_int=True)
        assert set(g.vertices()) == {10, 20, 30}

    def test_single_token_line_raises(self):
        with pytest.raises(GraphFormatError):
            parse_edge_list(["0 1", "justone"])


class TestRoundTrip:
    def test_int_round_trip(self, tmp_path):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back == g

    def test_string_round_trip(self, tmp_path):
        g = Graph(edges=[("alice", "bob"), ("bob", "carol")])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, as_int=False)
        assert back == g

    def test_written_header_is_a_comment(self, tmp_path):
        g = Graph(edges=[(0, 1)])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")
        # Reading back must not choke on the header.
        assert read_edge_list(path).num_edges == 1

    def test_isolated_vertices_not_round_tripped(self, tmp_path):
        # Edge lists cannot express isolated vertices; the round trip drops
        # them, which callers must account for.
        g = Graph(edges=[(0, 1)], vertices=[7])
        path = tmp_path / "graph.txt"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert set(back.vertices()) == {0, 1}
