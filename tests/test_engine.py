"""Tests for the unified solver engine: registry, preprocessing, parity,
serial/parallel bit-identity, and the CLI integration."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.cli import main as cli_main
from repro.engine import (
    SolveRequest,
    available_solvers,
    get_solver,
    preprocess,
    solve,
)
from repro.errors import EngineError
from repro.graph import Graph, complete_graph, cycle_graph, union_graph
from repro.datasets import load_dataset
from repro.lhcds import exact_top_k_lhcds, find_lhcds
from repro.cliques import clique_instances
from repro.patterns import get_pattern


def _shifted(graph: Graph, offset: int) -> Graph:
    return Graph(
        vertices=[v + offset for v in graph.vertices()],
        edges=[(u + offset, v + offset) for u, v in graph.edges()],
    )


def _multi_component_graph() -> Graph:
    """Disjoint K6, K5, K4 plus a triangle-bearing cycle and an instance-free path."""
    parts = [complete_graph(6), _shifted(complete_graph(5), 100), _shifted(complete_graph(4), 200)]
    sparse = cycle_graph(6)
    sparse.add_edge(0, 2)
    parts.append(_shifted(sparse, 300))
    path = Graph(edges=[(400, 401), (401, 402)])
    parts.append(path)
    return union_graph(*parts)


def _signature(report):
    """The bit-comparable output: ordered (vertex set, exact density) pairs."""
    return [(frozenset(s.vertices), s.density) for s in report.subgraphs]


class TestRegistry:
    def test_all_five_solvers_registered(self):
        assert set(available_solvers()) >= {"ippv", "exact", "greedy", "ldsflow", "ltds"}

    def test_unknown_solver_rejected(self):
        with pytest.raises(EngineError, match="unknown solver"):
            solve(graph=complete_graph(4), pattern=3, k=1, solver="nope")

    def test_fixed_h_enforced(self):
        with pytest.raises(EngineError, match="only supports h = 2"):
            solve(graph=complete_graph(4), pattern=3, k=1, solver="ldsflow")
        with pytest.raises(EngineError, match="only supports h = 3"):
            solve(graph=complete_graph(4), pattern=2, k=1, solver="ltds")

    def test_greedy_requires_k(self):
        with pytest.raises(EngineError, match="needs an explicit k"):
            solve(graph=complete_graph(4), pattern=3, solver="greedy")

    def test_invalid_request_parameters(self):
        with pytest.raises(EngineError, match="k must be positive"):
            SolveRequest(graph=complete_graph(4), k=0)
        with pytest.raises(EngineError, match="jobs must be"):
            SolveRequest(graph=complete_graph(4), jobs=-1)
        with pytest.raises(EngineError, match="empty graph"):
            solve(graph=Graph(), pattern=3, k=1)

    def test_spec_metadata(self):
        assert get_solver("ippv").internal_prune
        assert not get_solver("greedy").exact
        assert get_solver("ldsflow").fixed_h == 2


class TestPreprocessing:
    def test_components_split_and_zero_instance_drop(self):
        graph = _multi_component_graph()
        components, stats = preprocess(SolveRequest(graph=graph, pattern=3))
        assert stats.num_components == 5
        # The 3-vertex path hosts no triangle, so it is not solvable.
        assert stats.num_active_components == 4
        assert len(components) == 4
        assert stats.num_instances == clique_instances(graph, 3).num_instances

    def test_components_carry_restricted_instances_and_bounds(self):
        graph = _multi_component_graph()
        components, _ = preprocess(SolveRequest(graph=graph, pattern=3))
        # Ordered by decreasing upper bound: K6 first.
        assert components[0].subgraph.num_vertices == 6
        total = sum(c.instances.num_instances for c in components)
        assert total == clique_instances(graph, 3).num_instances
        for comp in components:
            assert comp.lower_bound <= comp.upper_bound
            assert all(
                comp.bounds.lower_of(v) <= comp.bounds.upper_of(v)
                for v in comp.subgraph.vertices()
            )

    def test_bounds_stage_skipped_when_nothing_consumes_it(self):
        graph = _multi_component_graph()
        request = SolveRequest(graph=graph, pattern=3, k=4, solver="greedy")
        components, stats = preprocess(request, compute_bounds=False)
        assert all(comp.bounds is None for comp in components)
        assert stats.bounds_seconds == 0.0
        # Components keep their discovery order (no upper bounds to sort by).
        assert [c.index for c in components] == sorted(c.index for c in components)
        # The engine's greedy path (which requests this) still answers.
        report = solve(request)
        assert report.preprocessing.bounds_seconds == 0.0
        assert _signature(report)[0] == (frozenset(range(6)), Fraction(20, 6))

    def test_component_skipping_only_for_exact_solvers(self):
        graph = _multi_component_graph()
        exact = solve(graph=graph, pattern=3, k=1, solver="exact")
        assert exact.preprocessing.num_skipped_components > 0
        greedy = solve(graph=graph, pattern=3, k=1, solver="greedy")
        assert greedy.preprocessing.num_skipped_components == 0
        # Skipping must not change the answer.
        assert _signature(exact)[0] == (frozenset(range(6)), Fraction(20, 6))


class TestCrossSolverParity:
    @pytest.mark.parametrize("abbr", ["HA", "GQ"])
    def test_top1_density_agrees_exact_ippv_greedy(self, abbr):
        graph = load_dataset(abbr)
        densities = {}
        for solver in ("exact", "ippv", "greedy"):
            report = solve(graph=graph, pattern=3, k=5, solver=solver)
            assert report.subgraphs, f"{solver} found nothing on {abbr}"
            densities[solver] = report.subgraphs[0].density
        assert densities["exact"] == densities["ippv"]
        assert densities["exact"] == densities["greedy"]
        assert isinstance(densities["exact"], Fraction)

    def test_exact_solvers_agree_on_full_topk(self):
        graph = _multi_component_graph()
        reports = {
            solver: solve(graph=graph, pattern=3, k=4, solver=solver)
            for solver in ("exact", "ippv", "ltds")
        }
        assert _signature(reports["exact"]) == _signature(reports["ippv"])
        assert _signature(reports["exact"]) == _signature(reports["ltds"])

    def test_engine_matches_direct_ippv_call(self):
        for graph in (load_dataset("HA"), _multi_component_graph()):
            direct = find_lhcds(graph, h=3, k=5)
            engine = solve(graph=graph, pattern=3, k=5, solver="ippv")
            assert _signature(engine) == [
                (frozenset(s.vertices), s.density) for s in direct.subgraphs
            ]

    def test_engine_matches_direct_exact_call(self):
        graph = _multi_component_graph()
        direct = exact_top_k_lhcds(graph, clique_instances(graph, 3), 4)
        engine = solve(graph=graph, pattern=3, k=4, solver="exact")
        assert _signature(engine) == [
            (frozenset(vertices), density) for vertices, density in direct
        ]


class TestSerialParallelIdentity:
    @pytest.mark.parametrize(
        "solver,h", [("ippv", 3), ("exact", 3), ("greedy", 3), ("ldsflow", 2), ("ltds", 3)]
    )
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_output_bit_identical_to_serial(self, solver, h, jobs):
        graph = _multi_component_graph()
        serial = solve(graph=graph, pattern=h, k=4, solver=solver, jobs=1)
        parallel = solve(graph=graph, pattern=h, k=4, solver=solver, jobs=jobs)
        assert _signature(serial) == _signature(parallel)
        assert serial.jobs_used == 1
        # Guards against a silent serial fallback: the graph has >= 4
        # solvable components for every solver, so unless the run was
        # forced onto the serial backend (REPRO_EXECUTOR in the CI matrix)
        # the parallel backend must actually engage.
        assert parallel.fallback_reason is None
        if parallel.executor == "serial":
            assert parallel.jobs_used == 1
        else:
            assert parallel.jobs_used == jobs

    def test_jobs_zero_means_cpu_count(self):
        graph = _multi_component_graph()
        serial = solve(graph=graph, pattern=3, k=4, solver="exact", jobs=1)
        auto = solve(graph=graph, pattern=3, k=4, solver="exact", jobs=0)
        assert _signature(serial) == _signature(auto)


class TestPatternsThroughEngine:
    def test_non_clique_pattern(self):
        graph = load_dataset("HA")
        report = solve(graph=graph, pattern=get_pattern("2-triangle"), k=2, solver="ippv")
        assert report.h == 4
        assert report.pattern_name == "2-triangle"
        assert all(s.density > 0 for s in report.subgraphs)


class TestReport:
    def test_report_carries_engine_metadata(self):
        graph = _multi_component_graph()
        report = solve(graph=graph, pattern=3, k=2, solver="ippv", jobs=1)
        assert report.solver == "ippv"
        assert report.k == 2
        assert report.preprocessing.num_vertices == graph.num_vertices
        assert report.preprocessing.num_instances > 0
        assert report.timings.total > 0

    def test_json_dict_round_trips(self):
        report = solve(graph=complete_graph(5), pattern=3, k=1, solver="exact")
        payload = json.loads(json.dumps(report.to_json_dict(), default=str))
        assert payload["solver"] == "exact"
        assert Fraction(payload["subgraphs"][0]["density"]) == Fraction(10, 5)
        assert payload["subgraphs"][0]["density_float"] == 2.0
        assert payload["subgraphs"][0]["vertices"] == [0, 1, 2, 3, 4]
        assert "preprocessing" in payload and "timings" in payload


class TestCLI:
    def test_topk_json_output(self, capsys):
        assert cli_main(["topk", "--dataset", "HA", "--k", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["solver"] == "ippv"
        assert len(payload["subgraphs"]) == 2
        top = payload["subgraphs"][0]
        assert Fraction(top["density"]) == Fraction(35, 3)
        assert top["vertices"]
        assert "timings" in payload and "preprocessing" in payload

    @pytest.mark.parametrize("solver", ["ippv", "exact", "greedy", "ltds"])
    def test_topk_runs_every_solver(self, solver, capsys):
        assert cli_main(["topk", "--dataset", "HA", "--k", "2", "--solver", solver]) == 0
        assert "density=" in capsys.readouterr().out

    def test_topk_ldsflow_needs_h2(self, capsys):
        assert cli_main(["topk", "--dataset", "HA", "--k", "2", "--solver", "ldsflow"]) == 1
        assert "only supports h = 2" in capsys.readouterr().err
        assert cli_main(
            ["topk", "--dataset", "HA", "--h", "2", "--k", "2", "--solver", "ldsflow"]
        ) == 0

    def test_topk_pattern_flag(self, capsys):
        assert cli_main(
            ["topk", "--dataset", "HA", "--pattern", "2-triangle", "--k", "1"]
        ) == 0
        assert "2-triangle" in capsys.readouterr().out

    def test_topk_jobs_flag_matches_serial(self, capsys):
        assert cli_main(["topk", "--dataset", "HA", "--k", "2", "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert cli_main(["topk", "--dataset", "HA", "--k", "2", "--json", "--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["subgraphs"] == parallel["subgraphs"]

    def test_solvers_subcommand(self, capsys):
        assert cli_main(["solvers"]) == 0
        out = capsys.readouterr().out
        for name in ("ippv", "exact", "greedy", "ldsflow", "ltds"):
            assert name in out
