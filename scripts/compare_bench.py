#!/usr/bin/env python3
"""Compare a freshly generated benchmark JSON against the committed baseline.

Usage::

    python scripts/compare_bench.py BENCH_4.json benchmarks/BENCH_baseline.json

Prints one line per metric and warns (GitHub Actions ``::warning::``
annotations when running in CI) for every timing that regressed by more
than the threshold (default: 1.25x, i.e. >25% slower).  Exits 0 by
default — absolute timings on shared runners are noisy, so regressions
warn rather than fail; pass ``--fail-on-regression`` to turn warnings
into a non-zero exit for local gating, or ``--fail-on <pct>`` to fail
only on blow-ups beyond ``pct`` percent (e.g. ``--fail-on 200`` fails at
3x the baseline) while ordinary noise keeps warning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _load_metrics(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    metrics = payload.get("metrics", payload)
    return {k: v for k, v in metrics.items() if isinstance(v, (int, float))}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated benchmark JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="current/baseline ratio above which a metric counts as a "
        "regression (default 1.25 = 25%% slower)",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any metric regresses (default: warn only)",
    )
    parser.add_argument(
        "--fail-on",
        type=float,
        metavar="PCT",
        default=None,
        help="exit 1 when any metric is more than PCT percent slower than "
        "the baseline (e.g. 200 fails at 3x); smaller regressions still "
        "warn via --threshold",
    )
    args = parser.parse_args(argv)

    current = _load_metrics(args.current)
    baseline = _load_metrics(args.baseline)
    in_ci = bool(os.environ.get("GITHUB_ACTIONS"))

    regressions = []
    ratios = []
    for name in sorted(set(current) | set(baseline)):
        if name not in baseline:
            print(f"  new      {name:40} {current[name]:.4f}s (no baseline)")
            continue
        if name not in current:
            print(f"  missing  {name:40} baseline {baseline[name]:.4f}s, not measured")
            continue
        ratio = current[name] / baseline[name] if baseline[name] > 0 else float("inf")
        ratios.append((name, ratio))
        marker = "ok" if ratio <= args.threshold else "REGRESSED"
        print(
            f"  {marker:8} {name:40} {current[name]:.4f}s "
            f"vs {baseline[name]:.4f}s ({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            regressions.append((name, ratio))
            if in_ci:
                print(
                    f"::warning title=benchmark regression::{name} is "
                    f"{ratio:.2f}x the committed baseline "
                    f"({current[name]:.4f}s vs {baseline[name]:.4f}s)"
                )

    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond "
            f"{args.threshold:.2f}x the baseline"
        )
        if args.fail_on_regression:
            return 1
    else:
        print("\nno regressions beyond the threshold")

    if args.fail_on is not None:
        limit = 1.0 + args.fail_on / 100.0
        blowups = [(name, ratio) for name, ratio in ratios if ratio > limit]
        if blowups:
            for name, ratio in blowups:
                print(
                    f"FAIL: {name} is {ratio:.2f}x the baseline "
                    f"(--fail-on {args.fail_on:g}% = {limit:.2f}x limit)"
                )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
