#!/usr/bin/env python3
"""CI smoke test for the streaming (incremental) solve path.

Boots ``python -m repro.server`` as a real subprocess on an ephemeral port,
registers a synthetic multi-component graph through the versioned ``/v1/``
API, then alternates ``POST /v1/graphs/{name}/deltas`` and
``POST /v1/graphs/{name}/solve`` over a short delta stream and asserts:

* every v1 response uses the uniform envelope (``ok``/``data`` on success,
  ``ok``/``error`` with a machine code on failure),
* after each delta, the incrementally served report is bit-identical to a
  cold in-process solve of the same post-delta graph (transport, placement,
  and wall-clock fields excluded — the :func:`json_report_signature`
  contract),
* the session actually reuses untouched components (the streaming path is
  not a cold solve in disguise),
* an unknown key is rejected with ``code == "unknown_key"`` and the
  accepted-key list in the error detail.

Usage::

    PYTHONPATH=src python scripts/streaming_smoke.py

Exits 0 on success, 1 on any assertion failure, with the server's stderr
echoed for post-mortem.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

from repro.datasets.synthetic import planted_communities_graph  # noqa: E402
from repro.engine import SolveRequest, json_report_signature, solve  # noqa: E402
from repro.graph import Graph, GraphDelta  # noqa: E402
from repro.graph.graph import union_graph  # noqa: E402

URL_RE = re.compile(r"http://([0-9.]+):(\d+)")
STARTUP_TIMEOUT_S = 30

H = 3
K = 3
GRAPH_NAME = "stream"

#: Delta stream: each touches one component of the registered graph.
DELTAS = [
    {"add_vertices": [950], "add_edges": [[950, 0], [950, 1]]},
    {"remove_vertices": [950]},
    {"add_edges": [[1000, 2000]]},  # merges two components
    {"remove_edges": [[1000, 2000]]},  # splits them again
]


def _request(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _unwrap(status: int, body: dict):
    """Assert the v1 success envelope and return its data payload."""
    assert status in (200, 201), f"expected 2xx, got {status}: {body}"
    assert body.get("ok") is True, f"expected ok envelope: {body}"
    return body["data"]


def _build_graph() -> Graph:
    parts = []
    offset = 0
    for seed, sizes in ((61, [10, 8]), (62, [9, 7]), (63, [8, 6])):
        g, _ = planted_communities_graph(
            sizes, p_in=0.9, p_out=0.05, seed=seed, background=8
        )
        parts.append(
            Graph(
                vertices=[v + offset for v in g.vertices()],
                edges=[(u + offset, v + offset) for u, v in g.edges()],
            )
        )
        offset += 1000
    return union_graph(*parts)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    base = None
    try:
        deadline = time.time() + STARTUP_TIMEOUT_S
        banner = ""
        while time.time() < deadline:
            line = process.stderr.readline()
            if not line:
                time.sleep(0.05)
                continue
            banner += line
            match = URL_RE.search(line)
            if match:
                base = f"http://{match.group(1)}:{match.group(2)}"
                break
        if base is None:
            print(f"FAIL: server never announced its address\n{banner}")
            return 1
        print(f"server up at {base}")

        health = _unwrap(*_request(base, "GET", "/v1/health"))
        assert health == {"status": "ok"}, health

        graph = _build_graph()
        record = _unwrap(
            *_request(
                base,
                "POST",
                "/v1/graphs",
                {"name": GRAPH_NAME, "edges": [[u, v] for u, v in graph.edges()]},
            )
        )
        print(f"registered: {record['vertices']} vertices, {record['edges']} edges")

        payload = {"h": H, "k": K, "solver": "ippv"}
        solve_path = f"/v1/graphs/{GRAPH_NAME}/solve"
        _unwrap(*_request(base, "POST", solve_path, payload))  # warm the session

        # Mirror exactly what the server holds: registration was edges-only,
        # so isolated vertices in the local build are not part of the graph.
        mirror = Graph(edges=list(graph.edges()))
        for index, delta_json in enumerate(DELTAS):
            applied = _unwrap(
                *_request(base, "POST", f"/v1/graphs/{GRAPH_NAME}/deltas", delta_json)
            )
            assert applied["epoch"] == index + 1, applied
            mirror.apply_delta(GraphDelta.from_json_dict(delta_json))
            state = applied["graph_state"]
            assert state["vertices"] == mirror.num_vertices, (state, index)
            assert state["edges"] == mirror.num_edges, (state, index)

            served = _unwrap(*_request(base, "POST", solve_path, payload))
            incremental = served["incremental"]
            cold = solve(SolveRequest(graph=mirror.copy(), pattern=H, k=K, solver="ippv"))
            if json_report_signature(served) != json_report_signature(cold.to_json_dict()):
                print(f"FAIL: delta {index}: served result differs from cold solve")
                print(json.dumps(served, indent=2, default=str))
                return 1
            if incremental["components_reused"] < 1:
                print(f"FAIL: delta {index}: no component reuse: {incremental}")
                return 1
            print(
                f"delta {index}: epoch={applied['epoch']} "
                f"reused={incremental['components_reused']}/"
                f"{incremental['components_total']} bit-identical to cold"
            )

        status, body = _request(base, "POST", solve_path, {"h": H, "bogus": 1})
        assert status == 400 and body.get("ok") is False, body
        error = body["error"]
        assert error["code"] == "unknown_key", error
        assert "bogus" in error["detail"]["unknown"], error
        assert "solver" in error["detail"]["accepted"], error

        stats = _unwrap(*_request(base, "GET", "/v1/stats"))
        counters = stats["counters"]
        if counters["deltas"] != len(DELTAS):
            print(f"FAIL: expected {len(DELTAS)} deltas, stats say {counters}")
            return 1

        print(
            f"OK: {len(DELTAS)} deltas streamed, every warm solve bit-identical "
            f"to cold, counters={counters}"
        )
        return 0
    except (AssertionError, urllib.error.URLError, OSError) as exc:
        print(f"FAIL: {type(exc).__name__}: {exc}")
        return 1
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
