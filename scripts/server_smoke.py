#!/usr/bin/env python3
"""CI smoke test for the persistent solve service.

Boots ``python -m repro.server`` as a real subprocess on an ephemeral port,
registers a synthetic graph over HTTP, issues the same ``/solve`` request
twice, and asserts:

* the second response reports a preprocess-cache hit,
* both responses carry bit-identical solve output (subgraphs, counters,
  preprocessing stats — wall-clock and cache bookkeeping excluded),
* ``/stats`` reflects the two solves and the cache's one store + one hit.

Usage::

    PYTHONPATH=src python scripts/server_smoke.py

Exits 0 on success, 1 on any assertion failure, with the server's stderr
echoed for post-mortem.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, SRC_DIR)

from repro.datasets.synthetic import planted_communities_graph  # noqa: E402

URL_RE = re.compile(r"http://([0-9.]+):(\d+)")
STARTUP_TIMEOUT_S = 30


def _request(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def _bit_identical_part(response: dict) -> dict:
    """Everything in a /solve response that must match across repeat calls."""
    return {
        "solver": response["solver"],
        "pattern": response["pattern"],
        "h": response["h"],
        "k": response["k"],
        "executor": response["executor"],
        "kernel": response["kernel"],
        "subgraphs": response["subgraphs"],
        "candidates_examined": response["candidates_examined"],
        "preprocessing": {
            key: value
            for key, value in response["preprocessing"].items()
            if not key.endswith("_seconds") and not key.startswith("cache_")
        },
    }


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.server", "--port", "0"],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    base = None
    try:
        # The server prints its bound address to stderr once it is up.
        deadline = time.time() + STARTUP_TIMEOUT_S
        banner = ""
        while time.time() < deadline:
            line = process.stderr.readline()
            if not line:
                time.sleep(0.05)
                continue
            banner += line
            match = URL_RE.search(line)
            if match:
                base = f"http://{match.group(1)}:{match.group(2)}"
                break
        if base is None:
            print(f"FAIL: server never announced its address\n{banner}")
            return 1
        print(f"server up at {base}")

        assert _request(base, "GET", "/health") == {"status": "ok"}

        graph, _ = planted_communities_graph(
            [10, 8, 7], p_in=0.9, p_out=0.05, seed=11, background=10
        )
        record = _request(
            base,
            "POST",
            "/graphs",
            {"name": "smoke", "edges": [[u, v] for u, v in graph.edges()]},
        )
        print(f"registered: {record['vertices']} vertices, {record['edges']} edges")

        payload = {"graph": "smoke", "h": 3, "k": 3, "solver": "ippv"}
        first = _request(base, "POST", "/solve", payload)
        second = _request(base, "POST", "/solve", payload)

        if first["cache"]["state"] != "miss":
            print(f"FAIL: first solve should miss, got {first['cache']['state']!r}")
            return 1
        if second["cache"]["state"] not in ("hit", "hit-memory"):
            print(f"FAIL: second solve should hit, got {second['cache']['state']!r}")
            return 1
        if second["cache"]["key"] != first["cache"]["key"]:
            print("FAIL: cache keys differ between identical requests")
            return 1
        if _bit_identical_part(first) != _bit_identical_part(second):
            print("FAIL: warm response differs from cold response")
            print(json.dumps(_bit_identical_part(first), indent=2))
            print(json.dumps(_bit_identical_part(second), indent=2))
            return 1
        if not first["subgraphs"]:
            print("FAIL: solve returned no subgraphs")
            return 1

        stats = _request(base, "GET", "/stats")
        if stats["counters"]["solves"] != 2:
            print(f"FAIL: expected 2 solves, stats say {stats['counters']}")
            return 1
        cache = stats["cache"]["counters"]
        if cache["stores"] != 1 or cache["hits"] != 1:
            print(f"FAIL: expected 1 store + 1 hit, cache says {cache}")
            return 1

        top = first["subgraphs"][0]
        print(
            f"OK: cold={first['cache']['state']} warm={second['cache']['state']} "
            f"top density={top['density']} |S|={top['size']} "
            f"warm preprocess={second['timing']['preprocess_seconds']:.4f}s"
        )
        return 0
    except (AssertionError, urllib.error.URLError, OSError) as exc:
        print(f"FAIL: {type(exc).__name__}: {exc}")
        return 1
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    sys.exit(main())
